// Command nsd is the experiment service daemon: a persistent,
// network-fronted runner pool. Submissions from any number of clients
// share one memoizing pool and one on-disk result store, so a measurement
// is simulated at most once across every CLI run and daemon restart that
// shares -cache-dir.
//
// Usage:
//
//	nsd                            # listen on :8080, store under ./nsd-cache
//	nsd -addr :0 -cache-dir /var/cache/nsd -j 8
//	nsd -queue 128 -max-client 16  # admission control knobs
//
// API (JSON unless noted):
//
//	POST   /api/v1/jobs            submit one job        {"workload":..,"system":..}
//	POST   /api/v1/figures/{id}    submit a figure's job set (?quick=1, ?workloads=a,b)
//	GET    /api/v1/jobs            list tasks
//	GET    /api/v1/jobs/{id}       poll status
//	GET    /api/v1/jobs/{id}/result  fetch result (figures: ?format=text for raw bytes)
//	GET    /api/v1/jobs/{id}/events  per-job progress over SSE
//	DELETE /api/v1/jobs/{id}       cancel
//	GET    /api/v1/report          cumulative obs run report
//	GET    /api/v1/live            daemon-wide live metrics over SSE (?interval_ms=)
//	GET    /metrics                Prometheus text format (counters, gauges, histograms)
//	GET    /debug/pprof/           Go runtime profiles (heap, goroutine, profile, trace)
//	GET    /healthz
//
// A full queue answers 429 with Retry-After; SIGTERM/SIGINT drains
// gracefully (in-flight simulations finish, queued jobs are canceled once
// -drain-timeout expires; a second signal exits immediately).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/serve"
	"repro/internal/workloads"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		cacheDir  = flag.String("cache-dir", "nsd-cache", "persistent result store directory (empty = memory only)")
		cacheMax  = flag.Int64("cache-max", 0, "store size cap in bytes (0 = unlimited)")
		jobs      = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 1, "parallel DES engines per simulated machine (results are byte-identical at any value)")
		scale     = flag.String("scale", "ci", "default scale: ci or paper")
		coreTy    = flag.String("core", "OOO8", "default core type: IO4, OOO4 or OOO8")
		seed      = flag.Uint64("seed", 1, "default input seed")
		queue     = flag.Int("queue", 64, "max admitted (queued+running) tasks before 429")
		maxClient = flag.Int("max-client", 8, "max in-flight tasks per client")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()

	hcfg := harness.DefaultConfig()
	hcfg.CoreType = *coreTy
	hcfg.Seed = *seed
	hcfg.Jobs = *jobs
	hcfg.Shards = *shards
	if *scale == "paper" {
		hcfg.Scale = workloads.ScalePaper
	}
	s, err := serve.New(serve.Config{
		Harness:       hcfg,
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		QueueDepth:    *queue,
		MaxPerClient:  *maxClient,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	store := "memory only"
	if *cacheDir != "" {
		store = fmt.Sprintf("store %s (%d entries)", *cacheDir, s.Store().Len())
	}
	log.Printf("nsd: listening on http://%s — %d workers, %s", ln.Addr(), s.Exp().Pool().Workers(), store)

	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("nsd: %v — draining (timeout %s, signal again to abort)", sig, *drain)
		go func() {
			<-sigCh
			os.Exit(130)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		s.Shutdown(ctx)   // reject new work, cancel queued jobs at the deadline
		srv.Shutdown(ctx) // then close listeners and idle connections
		log.Print("nsd: drained")
	}
}
