// Command nsrun simulates one Table VI workload on one design point and
// prints the headline statistics.
//
// Usage:
//
//	nsrun -workload histogram -system NS -scale ci -core OOO8
//	nsrun -list
package main

import (
	"flag"
	"fmt"
	"os"

	nearstream "repro"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	var (
		wname   = flag.String("workload", "histogram", "workload name (see -list)")
		sysName = flag.String("system", "NS", "system: Base INST SINGLE NS_core NS_no_comp NS NS_no_sync NS_decouple")
		scale   = flag.String("scale", "ci", "ci or paper")
		coreTy  = flag.String("core", "OOO8", "IO4, OOO4 or OOO8")
		seed    = flag.Uint64("seed", 1, "input seed")
		list    = flag.Bool("list", false, "list workloads and systems")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, n := range nearstream.Workloads() {
			w := nearstream.GetWorkload(n, nearstream.ScaleCI)
			fmt.Printf("  %-12s %-5s %s\n", n, w.AddrClass, w.CmpClass)
		}
		fmt.Println("systems:")
		for _, s := range nearstream.Systems() {
			fmt.Printf("  %s\n", s)
		}
		return
	}

	var sys core.System
	found := false
	for _, s := range nearstream.Systems() {
		if s.String() == *sysName {
			sys, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown system %q (try -list)\n", *sysName)
		os.Exit(2)
	}
	cfg := nearstream.DefaultConfig()
	cfg.CoreType = *coreTy
	cfg.Seed = *seed
	if *scale == "paper" {
		cfg.Scale = workloads.ScalePaper
	}

	res, err := nearstream.RunWorkload(*wname, sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("workload        %s\n", res.Workload)
	fmt.Printf("system          %s\n", res.System)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("micro-ops       %d\n", res.TotalOps)
	fmt.Printf("streamable ops  %d\n", res.StreamableOps)
	fmt.Printf("offloaded ops   %d\n", res.OffloadedOps)
	fmt.Printf("traffic (B*hops) data=%d control=%d offloaded=%d\n",
		res.TrafficData, res.TrafficControl, res.TrafficOffload)
	fmt.Printf("lock acquires   %d (conflicts %d)\n", res.LockAcquires, res.LockConflicts)
	e := res.Energy
	fmt.Printf("energy (J)      total=%.6f core=%.6f caches=%.6f noc=%.6f dram=%.6f static=%.6f\n",
		e.Total(), e.Core, e.Caches, e.NoC, e.DRAM, e.Static)
}
