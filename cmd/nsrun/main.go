// Command nsrun simulates Table VI workloads on design points and prints
// the headline statistics. With one workload and one system it prints the
// full stat block; comma-separated lists run as a parallel matrix
// (bounded by -j) with one summary line per measurement.
//
// Usage:
//
//	nsrun -workload histogram -system NS -scale ci -core OOO8
//	nsrun -workload histogram,pathfinder -system Base,NS,NS_decouple -j 4
//	nsrun -workload sssp -cpuprofile cpu.out -memprofile mem.out
//	nsrun -workload sssp -system NS -stall-report -   # cycle attribution table
//	nsrun -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	nearstream "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// main delegates to run so deferred profile writers flush before exit.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		wname    = flag.String("workload", "histogram", "workload name(s), comma-separated (see -list)")
		sysName  = flag.String("system", "NS", "system(s), comma-separated: Base INST SINGLE NS_core NS_no_comp NS NS_no_sync NS_decouple")
		scale    = flag.String("scale", "ci", "ci or paper")
		coreTy   = flag.String("core", "OOO8", "IO4, OOO4 or OOO8")
		seed     = flag.Uint64("seed", 1, "input seed")
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "parallel DES engines per simulated machine (output is byte-identical at any value)")
		progress = flag.Bool("progress", false, "report per-job progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
		cacheDir = flag.String("cache-dir", "", "persistent result store directory (shared with nsd and other runs)")
		cacheMax = flag.Int64("cache-max", 0, "store size cap in bytes (with -cache-dir; 0 = unlimited)")
		stallOut = flag.String("stall-report", "", "write a flat where-the-cycles-went stall table (cycle attribution) to this file (- for stdout)")
		list     = flag.Bool("list", false, "list workloads and systems")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		fmt.Println("workloads:")
		for _, n := range nearstream.Workloads() {
			w := nearstream.GetWorkload(n, nearstream.ScaleCI)
			fmt.Printf("  %-12s %-5s %s\n", n, w.AddrClass, w.CmpClass)
		}
		fmt.Println("systems:")
		for _, s := range nearstream.Systems() {
			fmt.Printf("  %s\n", s)
		}
		return 0
	}

	var systems []core.System
	for _, name := range strings.Split(*sysName, ",") {
		found := false
		for _, s := range nearstream.Systems() {
			if s.String() == name {
				systems, found = append(systems, s), true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown system %q (try -list)\n", name)
			return 2
		}
	}
	wnames := strings.Split(*wname, ",")

	cfg := nearstream.DefaultConfig()
	cfg.CoreType = *coreTy
	cfg.Seed = *seed
	if *scale == "paper" {
		cfg.Scale = workloads.ScalePaper
	}

	var jobList []runner.Job
	for _, w := range wnames {
		for _, sys := range systems {
			jobList = append(jobList, cfg.Job(w, sys))
		}
	}

	// Ctrl-C cancels queued jobs promptly instead of finishing the matrix.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := runner.NewPool(*jobs)
	pool.SetShards(*shards)
	var collector *nearstream.Collector
	if *stallOut != "" {
		collector = nearstream.NewCollector(0, 0)
		collector.Attribution = true
		pool.Obs = collector
	}
	if *cacheDir != "" {
		st, err := runner.OpenStore(*cacheDir, *cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		pool.Disk = st
	}
	if *progress {
		pool.OnProgress = func(ev runner.Progress) {
			status := ""
			if ev.Err != nil {
				status = " FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s%s\n", ev.Done, ev.Total, ev.Key, status)
		}
	}
	results, err := pool.RunCtx(ctx, jobList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "simulations: %d executed, %d served from cache, %d from disk\n",
			pool.Executed(), pool.Hits(), pool.DiskHits())
	} else {
		fmt.Fprintf(os.Stderr, "simulations: %d executed, %d served from cache\n",
			pool.Executed(), pool.Hits())
	}
	if mh, mm := pool.MachineReuse(); mh+mm > 0 {
		dh, dm, _, db := pool.DatasetCacheStats()
		fmt.Fprintf(os.Stderr, "reuse: machines %d pooled / %d built, datasets %d cached / %d generated (%.1f MB resident)\n",
			mh, mm, dh, dm, float64(db)/(1<<20))
	}

	if collector != nil {
		if werr := writeStallTable(collector, *stallOut); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			return 1
		}
	}

	if len(results) == 1 {
		printFull(results[0])
		return 0
	}
	fmt.Printf("%-12s %-12s %12s %12s %12s %14s %12s\n",
		"workload", "system", "cycles", "micro-ops", "offloaded", "traffic(B*hops)", "energy(J)")
	for _, r := range results {
		fmt.Printf("%-12s %-12s %12d %12d %12d %14d %12.6f\n",
			r.Workload, r.System, r.Cycles, r.TotalOps, r.OffloadedOps,
			r.TotalTraffic(), r.Energy.Total())
	}
	return 0
}

// writeStallTable renders the collector's cycle attribution as a flat
// per-component stall table ("-" writes to stdout).
func writeStallTable(c *nearstream.Collector, path string) error {
	rep := c.Report()
	if path == "-" {
		return obs.WriteStallTable(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteStallTable(f, rep); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func printFull(res *nearstream.Result) {
	fmt.Printf("workload        %s\n", res.Workload)
	fmt.Printf("system          %s\n", res.System)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("micro-ops       %d\n", res.TotalOps)
	fmt.Printf("streamable ops  %d\n", res.StreamableOps)
	fmt.Printf("offloaded ops   %d\n", res.OffloadedOps)
	fmt.Printf("traffic (B*hops) data=%d control=%d offloaded=%d\n",
		res.TrafficData, res.TrafficControl, res.TrafficOffload)
	fmt.Printf("lock acquires   %d (conflicts %d)\n", res.LockAcquires, res.LockConflicts)
	e := res.Energy
	fmt.Printf("energy (J)      total=%.6f core=%.6f caches=%.6f noc=%.6f dram=%.6f static=%.6f\n",
		e.Total(), e.Core, e.Caches, e.NoC, e.DRAM, e.Static)
}
