// Command nsexp regenerates the paper's figures and tables.
//
// Usage:
//
//	nsexp -fig 9                 # one figure, all 14 workloads
//	nsexp -fig 12 -quick         # a taxonomy-spanning 4-workload subset
//	nsexp -table 1               # a static table
//	nsexp -all -quick            # everything, sharing baseline runs
//	nsexp -all -quick -j 4       # ... across 4 simulation workers
//	nsexp -fig 9 -progress       # per-job progress on stderr
//	nsexp -fig 9 -cpuprofile cpu.out -memprofile mem.out
//	                             # profile the simulator itself (go tool pprof)
//
// All figures of one invocation render through a single memoizing job
// pool: a measurement several figures need (every figure's
// (workload, Base) denominator, each sweep's default point) simulates
// exactly once. -j N bounds the concurrent simulations (0 = GOMAXPROCS);
// output is byte-identical for every N.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	nearstream "repro"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// quickSet spans the taxonomy: MO store, affine load + indirect atomic,
// indirect reduce, pointer-chase reduce.
var quickSet = []string{"pathfinder", "histogram", "pr_pull", "hash_join"}

// main delegates to run so deferred profile writers flush before exit.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig      = flag.String("fig", "", "figure id: 1a 1b 9 10 11 12 13 14 15 16 17")
		table    = flag.String("table", "", "static table id: 1 2 4 5 area")
		all      = flag.Bool("all", false, "run every figure and table")
		quick    = flag.Bool("quick", false, "use a 4-workload taxonomy-spanning subset")
		scale    = flag.String("scale", "ci", "ci or paper")
		coreTy   = flag.String("core", "OOO8", "IO4, OOO4 or OOO8")
		wl       = flag.String("workloads", "", "comma-separated workload subset")
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report per-job progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := nearstream.DefaultConfig()
	cfg.CoreType = *coreTy
	cfg.Jobs = *jobs
	if *scale == "paper" {
		cfg.Scale = workloads.ScalePaper
	}
	var subset []string
	if *quick {
		subset = quickSet
	}
	if *wl != "" {
		subset = strings.Split(*wl, ",")
	}

	exp := nearstream.NewExperiment(cfg)
	if *progress {
		exp.OnProgress(func(ev runner.Progress) {
			from := "sim"
			if ev.Cached {
				from = "cache"
			}
			status := ""
			if ev.Err != nil {
				status = " FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-5s %s%s\n", ev.Done, ev.Total, from, ev.Key, status)
		})
	}

	show := func(t *nearstream.Table, err error) bool {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		fmt.Println(t)
		return true
	}

	switch {
	case *fig != "":
		if !show(exp.Figure(*fig, subset)) {
			return 1
		}
	case *table != "":
		if !show(nearstream.StaticTable(*table)) {
			return 1
		}
	case *all:
		for _, id := range []string{"1", "2", "4", "5", "area"} {
			if !show(nearstream.StaticTable(id)) {
				return 1
			}
		}
		for _, id := range nearstream.FigureIDs() {
			if !show(exp.Figure(id, subset)) {
				return 1
			}
		}
	default:
		flag.Usage()
		return 2
	}
	if *progress {
		executed, hits := exp.CacheStats()
		fmt.Fprintf(os.Stderr, "simulations: %d executed, %d served from cache\n", executed, hits)
	}
	return 0
}
