// Command nsexp regenerates the paper's figures and tables.
//
// Usage:
//
//	nsexp -fig 9                 # one figure, all 14 workloads
//	nsexp -fig 12 -quick         # a taxonomy-spanning 4-workload subset
//	nsexp -table 1               # a static table
//	nsexp -all -quick            # everything, sharing baseline runs
//	nsexp -all -quick -j 4       # ... across 4 simulation workers
//	nsexp -all -quick -shards 4  # ... each machine split into 4 parallel
//	                             # DES shard engines (same bytes out)
//	nsexp -fig 9 -progress       # per-job progress (+rate/ETA) on stderr
//	nsexp -fig 9 -trace t.json   # Chrome trace_event JSON (Perfetto-loadable)
//	nsexp -fig 9 -report r.json  # machine-readable per-job run report
//	nsexp -fig 9 -stall-report - # where-the-cycles-went stall attribution
//	nsexp -fig 9 -sample s.csv   # per-epoch IPC/occupancy/utilization series
//	nsexp -fig 9 -cpuprofile cpu.out -memprofile mem.out
//	                             # profile the simulator itself (go tool pprof)
//	nsexp -all -quick -cache-dir nsd-cache -progress
//	                             # read/write the persistent result store
//	                             # shared with nsd and later runs
//
// All figures of one invocation render through a single memoizing job
// pool: a measurement several figures need (every figure's
// (workload, Base) denominator, each sweep's default point) simulates
// exactly once. -j N bounds the concurrent simulations (0 = GOMAXPROCS);
// output is byte-identical for every N — including the -trace, -report
// (modulo its wall-clock timing fields) and -sample files, because
// observability hooks never inject events into a simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	nearstream "repro"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// main delegates to run so deferred profile writers flush before exit.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig         = flag.String("fig", "", "figure id: 1a 1b 9 10 11 12 13 14 15 16 17")
		table       = flag.String("table", "", "static table id: 1 2 4 5 area")
		all         = flag.Bool("all", false, "run every figure and table")
		quick       = flag.Bool("quick", false, "use a 4-workload taxonomy-spanning subset")
		scale       = flag.String("scale", "ci", "ci or paper")
		coreTy      = flag.String("core", "OOO8", "IO4, OOO4 or OOO8")
		wl          = flag.String("workloads", "", "comma-separated workload subset")
		jobs        = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 1, "parallel DES engines per simulated machine (output is byte-identical at any value)")
		progress    = flag.Bool("progress", false, "report per-job progress on stderr")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf     = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON of every simulated job to this file")
		reportOut   = flag.String("report", "", "write a machine-readable JSON run report to this file")
		stallOut    = flag.String("stall-report", "", "write a flat where-the-cycles-went stall table (cycle attribution) to this file (- for stdout)")
		sampleOut   = flag.String("sample", "", "write per-epoch time-series samples to this file (.json for JSON, else CSV)")
		sampleEvery = flag.Uint64("sample-every", obs.DefaultSamplePeriod, "sampling epoch in cycles (with -sample)")
		traceEvents = flag.Int("trace-events", obs.DefaultTraceEvents, "per-job trace ring capacity (with -trace)")
		cacheDir    = flag.String("cache-dir", "", "persistent result store directory (shared with nsd and other runs)")
		cacheMax    = flag.Int64("cache-max", 0, "store size cap in bytes (with -cache-dir; 0 = unlimited)")
	)
	flag.Parse()

	// Ctrl-C (or SIGTERM) cancels queued jobs promptly instead of
	// finishing the batch; simulations already on a worker complete, and
	// their results still land in the persistent store.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := nearstream.DefaultConfig()
	cfg.CoreType = *coreTy
	cfg.Jobs = *jobs
	cfg.Shards = *shards
	if *scale == "paper" {
		cfg.Scale = workloads.ScalePaper
	}
	var subset []string
	if *quick {
		subset = nearstream.QuickWorkloads()
	}
	if *wl != "" {
		subset = strings.Split(*wl, ",")
	}

	exp := nearstream.NewExperiment(cfg).WithContext(ctx)
	if *cacheDir != "" {
		st, err := nearstream.OpenStore(*cacheDir, *cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		exp.UseStore(st)
	}

	var collector *nearstream.Collector
	if *traceOut != "" || *reportOut != "" || *sampleOut != "" || *stallOut != "" {
		events, period := 0, uint64(0)
		if *traceOut != "" {
			events = *traceEvents
		}
		if *sampleOut != "" {
			period = *sampleEvery
		}
		collector = nearstream.NewCollector(events, period)
		// -stall-report (and any -report alongside it) needs per-job
		// cycle attribution; charging is count/cycle bumps on interned
		// lanes, so results stay byte-identical either way.
		collector.Attribution = *stallOut != "" || *reportOut != ""
		exp.Observe(collector)
	}

	start := time.Now()
	if *progress {
		exp.OnProgress(func(ev runner.Progress) {
			from := "sim"
			switch {
			case ev.Disk:
				from = "disk"
			case ev.Cached:
				from = "cache"
			}
			status := ""
			if ev.Err != nil {
				status = " FAILED"
			}
			pace := ""
			if mins := time.Since(start).Minutes(); mins > 0 && ev.Done > 0 {
				rate := float64(ev.Done) / mins
				eta := time.Duration(float64(ev.Total-ev.Done) / rate * float64(time.Minute)).Round(time.Second)
				pace = fmt.Sprintf(" (%.1f jobs/min, eta %s)", rate, eta)
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-5s %s%s%s\n", ev.Done, ev.Total, from, ev.Key, status, pace)
		})
	}

	show := func(t *nearstream.Table, err error) bool {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		fmt.Println(t)
		return true
	}

	switch {
	case *fig != "":
		if !show(exp.Figure(*fig, subset)) {
			return 1
		}
	case *table != "":
		if !show(nearstream.StaticTable(*table)) {
			return 1
		}
	case *all:
		for _, id := range []string{"1", "2", "4", "5", "area"} {
			if !show(nearstream.StaticTable(id)) {
				return 1
			}
		}
		for _, id := range nearstream.FigureIDs() {
			if !show(exp.Figure(id, subset)) {
				return 1
			}
		}
	default:
		flag.Usage()
		return 2
	}
	if *progress {
		executed, hits := exp.CacheStats()
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "simulations: %d executed, %d served from cache, %d from disk\n",
				executed, hits, exp.DiskHits())
		} else {
			fmt.Fprintf(os.Stderr, "simulations: %d executed, %d served from cache\n", executed, hits)
		}
		mh, mm := exp.MachineReuse()
		dh, dm, _, db := exp.DatasetCacheStats()
		fmt.Fprintf(os.Stderr, "reuse: machines %d pooled / %d built, datasets %d cached / %d generated (%.1f MB resident)\n",
			mh, mm, dh, dm, float64(db)/(1<<20))
	}
	if collector != nil {
		if err := writeObsOutputs(collector, exp, start, *traceOut, *reportOut, *sampleOut, *stallOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// writeObsOutputs exports the collector's trace, report, sample and
// stall-table files.
func writeObsOutputs(c *nearstream.Collector, exp *nearstream.Experiment, start time.Time, traceOut, reportOut, sampleOut, stallOut string) error {
	writeTo := func(path string, write func(f *os.File) error) error {
		if path == "-" {
			return write(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return f.Close()
	}
	if traceOut != "" {
		if err := writeTo(traceOut, func(f *os.File) error {
			return obs.WriteChromeTrace(f, c.Records())
		}); err != nil {
			return err
		}
	}
	if sampleOut != "" {
		write := obs.WriteSamplesCSV
		if strings.HasSuffix(sampleOut, ".json") {
			write = obs.WriteSamplesJSON
		}
		if err := writeTo(sampleOut, func(f *os.File) error {
			return write(f, c.Records())
		}); err != nil {
			return err
		}
	}
	if reportOut != "" {
		rep := c.Report()
		rep.Executed, rep.CacheHits = exp.CacheStats()
		rep.Env = obs.RunEnv{
			Command:      strings.Join(os.Args, " "),
			GoVersion:    runtime.Version(),
			Date:         start.UTC().Format(time.RFC3339),
			Workers:      exp.Workers(),
			Shards:       exp.Shards(),
			WallSeconds:  time.Since(start).Seconds(),
			PeakRSSBytes: obs.PeakRSSBytes(),
		}
		if err := writeTo(reportOut, func(f *os.File) error { return rep.WriteJSON(f) }); err != nil {
			return err
		}
	}
	if stallOut != "" {
		rep := c.Report()
		if err := writeTo(stallOut, func(f *os.File) error { return obs.WriteStallTable(f, rep) }); err != nil {
			return err
		}
	}
	return nil
}
