// Command nsexp regenerates the paper's figures and tables.
//
// Usage:
//
//	nsexp -fig 9                 # one figure, all 14 workloads
//	nsexp -fig 12 -quick         # a taxonomy-spanning 4-workload subset
//	nsexp -table 1               # a static table
//	nsexp -all -quick            # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	nearstream "repro"
	"repro/internal/workloads"
)

// quickSet spans the taxonomy: MO store, affine load + indirect atomic,
// indirect reduce, pointer-chase reduce.
var quickSet = []string{"pathfinder", "histogram", "pr_pull", "hash_join"}

func main() {
	var (
		fig    = flag.String("fig", "", "figure id: 1a 1b 9 10 11 12 13 14 15 16 17")
		table  = flag.String("table", "", "static table id: 1 2 4 5 area")
		all    = flag.Bool("all", false, "run every figure and table")
		quick  = flag.Bool("quick", false, "use a 4-workload taxonomy-spanning subset")
		scale  = flag.String("scale", "ci", "ci or paper")
		coreTy = flag.String("core", "OOO8", "IO4, OOO4 or OOO8")
		wl     = flag.String("workloads", "", "comma-separated workload subset")
	)
	flag.Parse()

	cfg := nearstream.DefaultConfig()
	cfg.CoreType = *coreTy
	if *scale == "paper" {
		cfg.Scale = workloads.ScalePaper
	}
	var subset []string
	if *quick {
		subset = quickSet
	}
	if *wl != "" {
		subset = strings.Split(*wl, ",")
	}

	show := func(t *nearstream.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(t)
	}

	switch {
	case *fig != "":
		show(nearstream.Figure(*fig, cfg, subset))
	case *table != "":
		show(nearstream.StaticTable(*table))
	case *all:
		for _, id := range []string{"1", "2", "4", "5", "area"} {
			show(nearstream.StaticTable(id))
		}
		for _, id := range []string{"1a", "1b", "9", "10", "11", "12", "13", "14", "15", "16", "17"} {
			show(nearstream.Figure(id, cfg, subset))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
