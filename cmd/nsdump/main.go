// Command nsdump inspects a workload the way a compiler explorer would:
// it prints the loop-nest IR, the compiled stream plan (which accesses
// became streams, which computations ride with them, what stays on the
// core), and the Table IV encoding size of each stream's configuration.
//
// Usage:
//
//	nsdump -workload sssp
//	nsdump -workload hotspot -scale paper
package main

import (
	"flag"
	"fmt"
	"os"

	nearstream "repro"
	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/workloads"
)

func main() {
	var (
		wname = flag.String("workload", "histogram", "workload name")
		scale = flag.String("scale", "ci", "ci or paper")
	)
	flag.Parse()

	sc := workloads.ScaleCI
	if *scale == "paper" {
		sc = workloads.ScalePaper
	}
	w := nearstream.GetWorkload(*wname, sc)
	fmt.Printf("// %s — %s %s, %d outer iteration(s)\n\n", w.Name, w.AddrClass, w.CmpClass, w.Iters)
	fmt.Println(w.Kernel)

	plan, err := nearstream.Compile(w.Kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("streams (%d):\n", len(plan.Streams))
	for _, s := range plan.Streams {
		access := "compute-only"
		if s.AccessOp != ir.NoValue {
			access = fmt.Sprintf("v%d", s.AccessOp)
		}
		fmt.Printf("  s%-2d %-9v %-7v access=%-5s", s.Sid, s.Kind, s.CT, access)
		if s.Write {
			fmt.Printf(" write")
		}
		if s.Atomic {
			fmt.Printf(" atomic(%v)", s.ScalarOp)
		}
		if s.BaseSid >= 0 {
			fmt.Printf(" base=s%d", s.BaseSid)
		}
		if len(s.ValueDepSids) > 0 {
			fmt.Printf(" deps=%v", s.ValueDepSids)
		}
		if s.Nested {
			fmt.Printf(" nested")
		}
		if s.Vector {
			fmt.Printf(" simd")
		}
		if len(s.ComputeOps) > 0 {
			fmt.Printf(" near-stream-insts=%v", s.ComputeOps)
		}
		if s.RetBytes > 0 {
			fmt.Printf(" ret=%dB", s.RetBytes)
		}
		fmt.Println()
	}
	fmt.Printf("fully decoupled (§V): %v\n\n", plan.FullyDecoupled)

	fmt.Println("op classification:")
	counts := map[compiler.Category]int{}
	for i := range w.Kernel.Ops {
		cat := plan.ClassOf(ir.ValueRef(i))
		counts[cat]++
		fmt.Printf("  v%-3d %-14v %s\n", i, cat, w.Kernel.OpString(ir.ValueRef(i)))
	}
	fmt.Printf("\nstatic op counts: %d stream-mem, %d stream-compute, %d core, %d config\n",
		counts[compiler.CatStreamMem], counts[compiler.CatStreamCompute],
		counts[compiler.CatCore], counts[compiler.CatConfig])

	fmt.Println("\nTable IV configuration sizes:")
	for _, s := range plan.Streams {
		cfg := &isa.StreamConfig{ID: isa.StreamID{Core: 0, Sid: s.Sid % 16}, Kind: s.Kind}
		switch s.Kind {
		case isa.KindAffine:
			cfg.Affine = isa.AffinePattern{Strides: [3]int64{int64(s.Type.Size())}, Lens: [3]uint64{1}, Dims: 1, ElemSize: s.Type.Size()}
		case isa.KindIndirect:
			cfg.Ind = isa.IndirectPattern{ElemSize: s.Type.Size()}
		case isa.KindPointerChase:
			cfg.Ptr = isa.PointerChasePattern{ElemSize: s.Type.Size()}
		}
		fmt.Printf("  s%-2d %d bytes\n", s.Sid, isa.EncodedBytes(cfg))
	}
}
