// Package nearstream is the public API of this reproduction of
// "Near-Stream Computing: General and Transparent Near-Cache Acceleration"
// (Wang, Weng, Liu, Nowatzki — HPCA 2022).
//
// The package re-exports the pieces a downstream user needs:
//
//   - authoring kernels in the loop-nest IR (Kernel, via the ir builder)
//   - compiling them to streams (Compile)
//   - building a simulated machine (NewMachine) and running a kernel on
//     any of the paper's eight design points (Run, Systems)
//   - the 14 Table VI workloads (Workloads, Workload)
//   - the experiment harness that regenerates every figure and table of
//     the evaluation (Figure, StaticTable)
//
// See examples/quickstart for a complete walkthrough, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for measured-vs-paper results.
package nearstream

import (
	"context"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// System is an evaluated design point (§VI): Base, INST, SINGLE, NSCore,
// NSNoComp, NS, NSNoSync, NSDecouple.
type System = core.System

// Re-exported design points.
const (
	Base       = core.Base
	INST       = core.INST
	SINGLE     = core.SINGLE
	NSCore     = core.NSCore
	NSNoComp   = core.NSNoComp
	NS         = core.NS
	NSNoSync   = core.NSNoSync
	NSDecouple = core.NSDecouple
)

// Systems lists every design point in figure order.
func Systems() []System { return core.AllSystems() }

// Scale selects workload/machine sizing.
type Scale = workloads.Scale

// Scales.
const (
	ScaleCI    = workloads.ScaleCI
	ScalePaper = workloads.ScalePaper
)

// Kernel is a loop-nest IR kernel; author one with NewKernelBuilder.
type Kernel = ir.Kernel

// NewKernelBuilder starts a kernel definition (see package ir for the
// full builder API).
func NewKernelBuilder(name string) *ir.Builder { return ir.NewKernel(name) }

// Plan is a compiled stream plan.
type Plan = compiler.Plan

// Compile runs the §III-B compiler passes over a kernel.
func Compile(k *Kernel) (*Plan, error) { return compiler.Compile(k) }

// Machine is the simulated system of Table V.
type Machine = machine.Machine

// Params are the runtime tunables (range window, SCM latency, SCC ROB,
// lock type, …).
type Params = core.Params

// Config selects scale, core type, parameter overrides and parallelism
// (Jobs) for harness runs.
type Config = harness.Config

// Overrides declaratively adjusts runtime parameters for sensitivity
// studies (see runner.Int/U64/Bool for setting fields).
type Overrides = runner.Overrides

// Job canonically describes one (workload, system, config) measurement.
type Job = runner.Job

// Result is one (workload, system) measurement.
type Result = harness.Result

// Table is a rendered figure/table.
type Table = harness.Table

// Workload is one Table VI benchmark.
type Workload = workloads.Workload

// Workloads lists the 14 Table VI benchmark names.
func Workloads() []string { return workloads.Names() }

// GetWorkload builds one workload at a scale.
func GetWorkload(name string, scale Scale) *Workload { return workloads.Get(name, scale) }

// DefaultConfig returns the CI-scale OOO8 harness configuration.
func DefaultConfig() Config { return harness.DefaultConfig() }

// NewMachine builds a machine for a configuration; prefetchers must be
// enabled exactly for the Base system.
func NewMachine(cfg Config, prefetchers bool) *Machine {
	return machine.New(harness.MachineConfig(cfg, prefetchers))
}

// RunWorkload simulates one workload on one system.
func RunWorkload(name string, sys System, cfg Config) (*Result, error) {
	return harness.RunOne(name, sys, cfg)
}

// RunKernel simulates a user-authored kernel on a fresh machine, returning
// the cycle count and the run result. Data arrays are allocated and handed
// to init for filling.
func RunKernel(k *Kernel, sys System, cfg Config, kparams map[string]uint64, init func(*ir.Data)) (*core.RunResult, error) {
	m := machine.New(harness.MachineConfig(cfg, sys == core.Base))
	d := ir.NewData(m.AS)
	d.AllocArrays(k)
	if init != nil {
		init(d)
	}
	return core.Run(m, k, sys, core.DefaultParams(m.Tiles()), kparams, d)
}

// Experiment renders figures against one shared, parallel, memoizing
// runner pool: a measurement requested by several figures (every figure's
// (workload, Base) denominator, the default point of each sensitivity
// sweep) simulates exactly once per Experiment. cfg.Jobs bounds the
// concurrency (0 = GOMAXPROCS); output is byte-identical at any value.
type Experiment struct {
	exp *harness.Exp
}

// NewExperiment builds an experiment context for a configuration.
func NewExperiment(cfg Config) *Experiment {
	return &Experiment{exp: harness.NewExp(cfg)}
}

// WithContext returns a view of the experiment whose job batches cancel
// with ctx: queued simulations stop before consuming a worker and Figure
// returns ctx.Err(). The view shares the pool (and so the memo cache and
// persistent store) with its parent.
func (e *Experiment) WithContext(ctx context.Context) *Experiment {
	return &Experiment{exp: e.exp.WithContext(ctx)}
}

// Store is the persistent content-addressed result store shared by CLI
// runs and the nsd daemon (see runner.OpenStore).
type Store = runner.Store

// OpenStore opens (creating if needed) a result store rooted at dir;
// maxBytes caps its size (0 = unlimited).
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	return runner.OpenStore(dir, maxBytes)
}

// UseStore attaches a persistent store to the experiment's pool: fresh
// jobs are looked up on disk before simulating, and every simulated
// result is written back (set before the first Figure call).
func (e *Experiment) UseStore(s *Store) {
	e.exp.Pool().Disk = s
}

// DiskHits reports how many jobs were served from the persistent store.
func (e *Experiment) DiskHits() uint64 { return e.exp.Pool().DiskHits() }

// UseRemote installs a remote executor on the experiment's pool: fresh
// jobs that miss the memo cache (and the persistent store, if attached)
// are delegated to fn instead of simulating locally. This is the hook
// behind nsd's fleet coordinator mode (internal/fleet dispatches through
// it to worker daemons); any custom distribution layer can plug in the
// same way. Set before the first Figure call. Figure output remains
// byte-identical — only where each simulation runs changes.
func (e *Experiment) UseRemote(fn func(ctx context.Context, j Job) (*Result, error)) {
	e.exp.Pool().Remote = fn
}

// RemoteJobs reports how many jobs the remote executor resolved.
func (e *Experiment) RemoteJobs() uint64 { return e.exp.Pool().RemoteJobs() }

// QuickWorkloads is the taxonomy-spanning 4-workload subset behind the
// CLIs' -quick flag and the daemon's ?quick= figure submissions.
func QuickWorkloads() []string { return harness.QuickSet() }

// OnProgress registers a per-job progress callback (set before the first
// Figure call; invoked serially as jobs finish).
func (e *Experiment) OnProgress(fn func(runner.Progress)) {
	e.exp.Pool().OnProgress = fn
}

// CacheStats reports how many simulations actually ran and how many job
// requests were served from the memo cache.
func (e *Experiment) CacheStats() (executed, hits uint64) {
	return e.exp.Pool().Executed(), e.exp.Pool().Hits()
}

// Collector gathers per-job observability (event traces, time-series
// samples, machine-readable run reports) across an Experiment's jobs.
type Collector = obs.Collector

// NewCollector builds a collector; traceEvents sizes each job's trace ring
// (0 = tracing off) and samplePeriod is the sampling epoch in cycles
// (0 = sampling off). A collector with both zero still gathers run
// reports.
func NewCollector(traceEvents int, samplePeriod uint64) *Collector {
	return obs.NewCollector(traceEvents, samplePeriod)
}

// Observe attaches a collector to the experiment's job pool (set before
// the first Figure call). Collection never perturbs simulated behavior:
// figure output is byte-identical with or without it.
func (e *Experiment) Observe(c *Collector) {
	e.exp.Pool().Obs = c
}

// MachineReuse reports the pool's machine checkout counters: hits are
// jobs that ran on a pooled (Reset) machine, misses built one fresh.
func (e *Experiment) MachineReuse() (hits, misses uint64) {
	return e.exp.Pool().MachineReuse()
}

// DatasetCacheStats reports the in-process dataset cache's cumulative
// hits, misses, LRU evictions and resident bytes.
func (e *Experiment) DatasetCacheStats() (hits, misses, evictions uint64, bytes int64) {
	return e.exp.Pool().DatasetCacheStats()
}

// Workers reports the experiment pool's concurrency bound.
func (e *Experiment) Workers() int { return e.exp.Pool().Workers() }

// Shards reports the per-job shard-engine count (1 = serial machines).
func (e *Experiment) Shards() int { return e.exp.Pool().Shards() }

// Figure regenerates one paper figure by number ("1a", "1b", "9" … "17").
// subset restricts the workloads (nil = all 14).
func (e *Experiment) Figure(id string, subset []string) (*Table, error) {
	return e.exp.Figure(id, subset)
}

// Figure regenerates one paper figure with a fresh single-figure
// Experiment. Rendering several figures? Share an Experiment so common
// measurements are memoized across them.
func Figure(id string, cfg Config, subset []string) (*Table, error) {
	return NewExperiment(cfg).Figure(id, subset)
}

// FigureIDs lists every figure id Figure accepts, in paper order.
func FigureIDs() []string { return harness.FigureIDs() }

// StaticTable renders the qualitative tables ("1", "2", "4", "5", "area").
func StaticTable(id string) (*Table, error) {
	switch id {
	case "1":
		return harness.TableI(), nil
	case "2":
		return harness.TableII(), nil
	case "4":
		return harness.TableIV(), nil
	case "5":
		cfg := harness.DefaultConfig()
		cfg.Scale = ScalePaper
		return harness.TableV(cfg), nil
	case "area":
		return harness.AreaReport(), nil
	default:
		return nil, fmt.Errorf("nearstream: unknown static table %q", id)
	}
}

// NewRand exposes the deterministic RNG used throughout (for example
// programs that generate inputs).
func NewRand(seed uint64) *sim.Rand { return sim.NewRand(seed) }
