// Graph analytics: runs the GAP-style push and pull kernels (indirect
// atomics and indirect reductions over a Kronecker graph) on the paper's
// near-stream design points and reports the speedups and lock behaviour —
// the workloads behind Figures 9, 12 and 16.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	nearstream "repro"
)

func main() {
	cfg := nearstream.DefaultConfig()
	graphs := []string{"bfs_push", "pr_push", "sssp", "bfs_pull", "pr_pull"}

	fmt.Printf("%-10s %12s %12s %10s %14s\n", "workload", "Base cyc", "NS cyc", "speedup", "lock conflicts")
	for _, name := range graphs {
		base, err := nearstream.RunWorkload(name, nearstream.Base, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ns, err := nearstream.RunWorkload(name, nearstream.NS, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %12d %9.2fx %14d\n",
			name, base.Cycles, ns.Cycles,
			float64(base.Cycles)/float64(ns.Cycles), ns.LockConflicts)
	}

	// The §IV-C MRSW lock: failed CASes and non-improving mins are served
	// as concurrent readers.
	fmt.Println("\nMRSW vs exclusive locks on bfs_push (Figure 16):")
	tab, err := nearstream.Figure("16", cfg, []string{"bfs_push", "sssp"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)
}
