// Quickstart: author a kernel in the loop-nest IR, compile it to streams,
// and run it on the Base core and on full near-stream computing, comparing
// cycles and NoC traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	nearstream "repro"
	"repro/internal/ir"
)

func main() {
	const n = 1 << 16 // 64k elements

	// acc = Σ A[i] — the Figure 2a running example: an affine load stream
	// with an associated reduction.
	b := nearstream.NewKernelBuilder("quickstart_sum")
	b.Array("A", ir.I64, n)
	b.Loop("i", n)
	v := b.Load(ir.I64, ir.AffineAddr("A", 0, map[int]int64{0: 1}))
	b.Reduce(ir.I64, ir.Add, "acc", v, -1, 0)
	kernel := b.Build()

	// The compiler recognizes the streams (§III-B).
	plan, err := nearstream.Compile(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d streams:\n", len(plan.Streams))
	for _, s := range plan.Streams {
		fmt.Printf("  sid=%d kind=%-9v compute=%-7v scalar-op=%v\n",
			s.Sid, s.Kind, s.CT, s.ScalarOp)
	}

	cfg := nearstream.DefaultConfig()
	fill := func(d *ir.Data) {
		a := d.Array("A")
		for i := uint64(0); i < n; i++ {
			a.Set(i, i)
		}
	}

	fmt.Printf("\n%-12s %12s %16s %14s\n", "system", "cycles", "traffic(B*hops)", "sum")
	for _, sys := range []nearstream.System{nearstream.Base, nearstream.NSCore, nearstream.NS, nearstream.NSDecouple} {
		res, err := nearstream.RunKernel(kernel, sys, cfg, nil, fill)
		if err != nil {
			log.Fatal(err)
		}
		var sum uint64
		for _, accs := range res.Accs {
			sum += accs["acc"]
		}
		traffic := res.Stats.Get("noc.bytehops.data") +
			res.Stats.Get("noc.bytehops.control") +
			res.Stats.Get("noc.bytehops.offloaded")
		fmt.Printf("%-12v %12d %16d %14d\n", sys, res.Cycles, traffic, sum)
		if want := uint64(n) * (n - 1) / 2; sum != want {
			log.Fatalf("wrong sum: %d != %d", sum, want)
		}
	}
	fmt.Println("\nall systems computed the same sum; NS variants cut traffic and cycles")
}
