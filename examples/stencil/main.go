// Stencil: a Rodinia-style multi-operand kernel (hotspot). Shows the
// §II-B "store" optimization: the five input load streams forward their
// elements to the output store stream's bank, where the SIMD computation
// runs — no data returns to the core, and under the s_sync_free pragma the
// inner loop fully decouples (§V, Figure 8).
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	nearstream "repro"
)

func main() {
	cfg := nearstream.DefaultConfig()

	w := nearstream.GetWorkload("hotspot", nearstream.ScaleCI)
	plan, err := nearstream.Compile(w.Kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hotspot compiles to %d streams; fully decoupled: %v\n",
		len(plan.Streams), plan.FullyDecoupled)
	for _, s := range plan.Streams {
		fmt.Printf("  sid=%d kind=%v compute=%v deps=%v vector=%v\n",
			s.Sid, s.Kind, s.CT, s.ValueDepSids, s.Vector)
	}

	fmt.Printf("\n%-12s %12s %18s\n", "system", "cycles", "traffic(B*hops)")
	for _, sys := range []nearstream.System{
		nearstream.Base, nearstream.INST, nearstream.SINGLE,
		nearstream.NS, nearstream.NSDecouple,
	} {
		res, err := nearstream.RunWorkload("hotspot", sys, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %12d %18d\n", sys, res.Cycles, res.TotalTraffic())
	}
	fmt.Println("\nSINGLE cannot express the multi-operand function (§II-C) and falls")
	fmt.Println("back to in-core execution; NS forwards operands bank-to-bank instead.")
}
