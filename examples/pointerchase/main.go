// Pointer chase: binary-tree search and hash-join probing with migrating
// pointer-chase reduction streams (§IV-C). Shows the §V effect the paper
// highlights for bin_tree and hash_join: under NS_decouple multiple
// fully-decoupled chase instances run simultaneously among the LLC banks,
// while the Base core is stuck on serial pointer dereferences.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	nearstream "repro"
)

func main() {
	cfg := nearstream.DefaultConfig()

	for _, name := range []string{"bin_tree", "hash_join"} {
		w := nearstream.GetWorkload(name, nearstream.ScaleCI)
		plan, err := nearstream.Compile(w.Kernel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d streams, fully decoupled: %v\n",
			name, len(plan.Streams), plan.FullyDecoupled)

		base, err := nearstream.RunWorkload(name, nearstream.Base, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %12s %10s %16s\n", "system", "cycles", "speedup", "traffic(B*hops)")
		for _, sys := range []nearstream.System{
			nearstream.Base, nearstream.SINGLE, nearstream.NS, nearstream.NSDecouple,
		} {
			r := base
			if sys != nearstream.Base {
				r, err = nearstream.RunWorkload(name, sys, cfg)
				if err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("  %-12v %12d %9.2fx %16d\n",
				sys, r.Cycles, float64(base.Cycles)/float64(r.Cycles), r.TotalTraffic())
		}
		fmt.Println()
	}
	fmt.Println("NS_decouple runs several chase instances concurrently (§V);")
	fmt.Println("SINGLE chains bank-to-bank like Livia's continuation functions.")
}
