package nearstream

import (
	"testing"

	"repro/internal/ir"
)

func TestWorkloadsList(t *testing.T) {
	if len(Workloads()) != 14 {
		t.Fatalf("want 14 workloads, got %d", len(Workloads()))
	}
	for _, n := range Workloads() {
		if GetWorkload(n, ScaleCI) == nil {
			t.Fatalf("workload %s missing", n)
		}
	}
}

func TestSystemsList(t *testing.T) {
	if len(Systems()) != 8 {
		t.Fatalf("want 8 design points, got %d", len(Systems()))
	}
	if Systems()[0] != Base || Systems()[len(Systems())-1] != NSDecouple {
		t.Fatal("system order changed")
	}
}

func TestRunKernelPublicAPI(t *testing.T) {
	const n = 1 << 14
	b := NewKernelBuilder("api_sum")
	b.Array("A", ir.I64, n)
	b.Loop("i", n)
	v := b.Load(ir.I64, ir.AffineAddr("A", 0, map[int]int64{0: 1}))
	b.Reduce(ir.I64, ir.Add, "acc", v, -1, 0)
	k := b.Build()

	plan, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Streams) == 0 {
		t.Fatal("no streams compiled")
	}

	res, err := RunKernel(k, NS, DefaultConfig(), nil, func(d *ir.Data) {
		a := d.Array("A")
		for i := uint64(0); i < n; i++ {
			a.Set(i, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, accs := range res.Accs {
		sum += accs["acc"]
	}
	if sum != 2*n {
		t.Fatalf("sum = %d, want %d", sum, 2*n)
	}
}

func TestFigureUnknownID(t *testing.T) {
	if _, err := Figure("99", DefaultConfig(), nil); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := StaticTable("99"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := NewExperiment(DefaultConfig()).Figure("99", nil); err == nil {
		t.Fatal("unknown figure accepted by Experiment")
	}
}

func TestExperimentMemoizesAcrossFigures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jobs = 2
	exp := NewExperiment(cfg)
	tab1, err := exp.Figure("11", []string{"histogram"})
	if err != nil {
		t.Fatal(err)
	}
	// The same measurement requested again renders from the cache.
	tab2, err := exp.Figure("11", []string{"histogram"})
	if err != nil {
		t.Fatal(err)
	}
	if tab1.String() != tab2.String() {
		t.Fatal("re-rendered figure differs")
	}
	executed, hits := exp.CacheStats()
	if executed != 1 || hits != 1 {
		t.Fatalf("executed=%d hits=%d, want 1/1", executed, hits)
	}
}

func TestStaticTablesViaAPI(t *testing.T) {
	for _, id := range []string{"1", "2", "4", "area"} {
		tab, err := StaticTable(id)
		if err != nil || len(tab.Rows) == 0 {
			t.Fatalf("table %s: %v", id, err)
		}
	}
}
