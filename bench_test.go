package nearstream

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark
// regenerates its figure at CI scale over a taxonomy-spanning workload
// subset and reports the headline number as a custom metric, so
// `go test -bench=.` both exercises the full stack and prints the
// reproduced shape. `-benchtime=1x` is implicit in spirit: every figure is
// expensive, so b.N loops re-render from scratch.

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sim"
)

// benchSubset spans the taxonomy: multi-operand store (pathfinder), affine
// load + indirect atomic (histogram), indirect reduce (pr_pull), pointer
// chase (hash_join).
var benchSubset = []string{"pathfinder", "histogram", "pr_pull", "hash_join"}

func benchCfg() Config {
	return DefaultConfig()
}

func renderFig(b *testing.B, id string, subset []string) *Table {
	b.Helper()
	var tab *Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = Figure(id, benchCfg(), subset)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

func BenchmarkFig1aStreamOpBreakdown(b *testing.B) {
	tab := renderFig(b, "1a", benchSubset)
	var streamable float64
	for _, r := range tab.Rows {
		streamable += r.Cells[0] + r.Cells[1]
	}
	b.ReportMetric(streamable/float64(len(tab.Rows)), "streamable_frac")
}

func BenchmarkFig1bIdealTraffic(b *testing.B) {
	tab := renderFig(b, "1b", benchSubset)
	var nearLLC float64
	for _, r := range tab.Rows {
		nearLLC += r.Cells[2]
	}
	b.ReportMetric(1-nearLLC/float64(len(tab.Rows)), "near_llc_traffic_cut")
}

func BenchmarkFig9OverallSpeedup(b *testing.B) {
	tab := renderFig(b, "9", benchSubset)
	ns, _ := tab.Cell("geomean", "NS")
	dec, _ := tab.Cell("geomean", "NS_decouple")
	b.ReportMetric(ns, "NS_speedup")
	b.ReportMetric(dec, "NS_decouple_speedup")
}

func BenchmarkFig10EnergyPerf(b *testing.B) {
	tab := renderFig(b, "10", []string{"pathfinder", "pr_pull"})
	en, _ := tab.Cell("OOO8", "NS energy")
	b.ReportMetric(en, "NS_energy_ratio_OOO8")
}

func BenchmarkFig11OffloadedOps(b *testing.B) {
	tab := renderFig(b, "11", benchSubset)
	var off, str float64
	for _, r := range tab.Rows {
		str += r.Cells[0]
		off += r.Cells[1]
	}
	b.ReportMetric(off/str, "offloaded_of_streamable")
}

func BenchmarkFig12Traffic(b *testing.B) {
	tab := renderFig(b, "12", []string{"pathfinder", "pr_pull"})
	col := tab.Col("NS_decouple/data")
	var total float64
	for _, r := range tab.Rows {
		total += r.Cells[col] + r.Cells[col+1] + r.Cells[col+2]
	}
	b.ReportMetric(1-total/float64(len(tab.Rows)), "decouple_traffic_cut")
}

func BenchmarkFig13SCMLatency(b *testing.B) {
	tab := renderFig(b, "13", []string{"pathfinder", "hash_join"})
	v, _ := tab.Cell("NS_decouple", "16cyc")
	b.ReportMetric(v, "decouple_rel_perf_16cyc")
}

func BenchmarkFig14SCCROB(b *testing.B) {
	tab := renderFig(b, "14", []string{"pathfinder", "pr_pull"})
	v, _ := tab.Cell("pathfinder", "8")
	b.ReportMetric(v, "pathfinder_perf_rob8")
}

func BenchmarkFig15AffineRanges(b *testing.B) {
	tab := renderFig(b, "15", []string{"pathfinder", "histogram"})
	v, _ := tab.Cell("pathfinder", "traffic ratio")
	b.ReportMetric(v, "core_range_traffic_ratio")
}

func BenchmarkFig16LockType(b *testing.B) {
	tab := renderFig(b, "16", []string{"bfs_push"})
	v, _ := tab.Cell("bfs_push", "conflict ratio")
	b.ReportMetric(v, "mrsw_conflict_ratio")
}

func BenchmarkFig17ScalarPE(b *testing.B) {
	tab := renderFig(b, "17", []string{"hash_join", "pr_pull"})
	v, _ := tab.Cell("hash_join", "speedup")
	b.ReportMetric(v, "hash_join_pe_speedup")
}

func BenchmarkTableICapabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := StaticTable("1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIPatternMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := StaticTable("2"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIVEncoding(b *testing.B) {
	var tab *Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = StaticTable("4")
		if err != nil {
			b.Fatal(err)
		}
	}
	v, _ := tab.Cell("affine", "bytes")
	b.ReportMetric(v, "affine_cfg_bytes")
}

func BenchmarkAreaOverhead(b *testing.B) {
	var tab *Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = StaticTable("area")
		if err != nil {
			b.Fatal(err)
		}
	}
	v, _ := tab.Cell("overhead% OOO8", "value")
	b.ReportMetric(v, "chip_overhead_pct_OOO8")
}

// BenchmarkWorkloadNS benchmarks a single representative NS run end to end
// (the unit of every figure above).
func BenchmarkWorkloadNS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunOne("histogram", core.NS, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrix compares serial vs pooled execution of a 4-workload ×
// 3-system matrix: the experiment runner's throughput number. Each
// iteration uses a fresh pool so memoization cannot mask execution cost;
// the pooled/serial wall-clock ratio tracks how well the runner converts
// cores into figure throughput.
func BenchmarkMatrix(b *testing.B) {
	cfg := benchCfg()
	var jobs []runner.Job
	for _, w := range benchSubset {
		for _, sys := range []System{Base, NS, NSDecouple} {
			jobs = append(jobs, cfg.Job(w, sys))
		}
	}
	run := func(b *testing.B, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := runner.NewPool(workers).Run(jobs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(jobs)), "jobs/matrix")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("pooled", func(b *testing.B) { run(b, 0) })
	// sharded: same matrix with each Base simulation split into 4 parallel
	// DES shard engines (stream systems clamp to one shard). Identical
	// results by construction; the delta against pooled is the cost (or
	// gain) of windowed execution inside one simulation.
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := runner.NewPool(0)
			p.SetShards(4)
			if _, err := p.Run(jobs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(jobs)), "jobs/matrix")
	})
}

// BenchmarkBigMesh16x16 scales the simulated machine past the paper's 8×8
// to a 16×16 mesh — 256 tiles, the regime parallel DES is for — and
// drives a synthetic all-tiles access storm (strided private lines plus a
// contended shared line, mixed reads and writes) through the full
// coherence/NoC/DRAM stack at 1, 2, 4 and 8 shards. Counters and final
// clock are byte-identical across the sub-benchmarks; the ns/op ratios
// measure how the windowed exchange scales with shard count. On a
// single-processor host the windows run inline, so shards>1 there
// reports pure coordination overhead.
func BenchmarkBigMesh16x16(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.Default()
				cfg.MeshWidth, cfg.MeshHeight = 16, 16
				cfg.NoC.Width, cfg.NoC.Height = 16, 16
				cfg.Shards = shards
				m := machine.New(cfg)
				for tile := 0; tile < m.Tiles(); tile++ {
					tile := tile
					base := uint64(0x100000 + tile*64*257)
					for k := 0; k < 8; k++ {
						addr := base + uint64(k)*64*uint64(1+tile%3)
						if k%5 == 4 {
							addr = 0x400000 + uint64(k%2)*64
						}
						write := (tile+k)%3 == 0
						m.EngineOf(tile).ScheduleAt(sim.Time(1+tile+7*k), func() {
							m.Hier.Tile(tile).Access(addr, write, uint64(tile*100+k), func(cache.Level) {})
						})
					}
				}
				m.Run()
				m.Close()
			}
		})
	}
}
